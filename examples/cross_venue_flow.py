"""Cross-venue crowd analysis over parametric synthetic venues.

The paper's analyses (summary statistics, per-cell flow balance,
sequential patterns) are defined on the SITM model, not on the
Louvre specifically — so they should transfer unchanged to any
venue expressible in the model.  This example generates one venue
per ``repro.synth`` archetype, synthesizes a deterministic crowd
over each, and runs the same analysis battery across all of them:

* headline corpus numbers per archetype,
* the busiest cells by flow throughput, checked against the
  grammar's designated hotspots,
* the top sequential patterns, which should start at the entrance.

Run:  python examples/cross_venue_flow.py
"""

from repro.api import Workbench
from repro.synth import ARCHETYPES, VenueSpec, generate_venue

AGENTS = 300
SEED = 7


def analyze(archetype: str) -> None:
    venue = generate_venue(VenueSpec(archetype=archetype, seed=SEED))
    problems = venue.validate()
    assert not problems, problems
    workbench = Workbench.synthetic(
        archetype=archetype, seed=SEED, agents=AGENTS,
        crowd_seed=42, agents_per_day=150)

    stats = workbench.summary()
    print("=== {} ({} cells, {} floors) ===".format(
        venue.spec.venue_name, venue.room_count, venue.floors))
    print("  visits={:.0f} visitors={:.0f} detections={:.0f}".format(
        stats["visits"], stats["visitors"], stats["detections"]))

    # Flow: total throughput (in + out) per cell; the grammar's
    # hotspot cells draw extra attraction weight, so they should
    # dominate the busiest ranks.
    balances = workbench.flow()
    busiest = sorted(balances,
                     key=lambda b: b.inflow + b.outflow,
                     reverse=True)[:5]
    hotspots = {zone for zone, weight
                in venue.zone_attractions().items() if weight > 1.0}
    print("  busiest cells (* = grammar hotspot):")
    for balance in busiest:
        marker = "*" if balance.state in hotspots else " "
        print("   {} {:8s} in={:4d} out={:4d}".format(
            marker, balance.state, balance.inflow, balance.outflow))

    patterns = workbench.patterns(min_support=0.10, max_length=3)
    top = sorted(patterns, key=lambda p: -p.support)[:3]
    print("  top patterns:")
    for pattern in top:
        print("    {:3d}x  {}".format(
            pattern.support, " → ".join(pattern.sequence)))
    entrance = venue.entrances[0]
    starters = [p for p in top if p.sequence[0] == entrance]
    print("  {} of top {} start at entrance {}".format(
        len(starters), len(top), entrance))
    print()


def main() -> None:
    for archetype in sorted(ARCHETYPES):
        analyze(archetype)


if __name__ == "__main__":
    main()
