"""The paper's Section 5 future-work directions, implemented.

1. **Conceptual trajectories** — re-read movement as focus of
   attention: which exhibits did the visitor actually engage with?
2. **Ontology integration** — annotate stays with CIDOC-CRM-style
   concepts and query at the concept level.
3. **Sparsity repair** — stitch fragmented zone sequences into longer
   indicative visits.

Run:  python examples/future_work.py
"""

import random

from repro.core import TrajectoryBuilder
from repro.core.conceptual import (
    AttentionExtractor,
    AttentionReport,
    attention_profile,
    physical_vs_conceptual,
)
from repro.core.timeutil import from_date
from repro.indoor.ontology import CellConceptMapping, cidoc_core
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.louvre.floorplan import MONA_LISA_ROI, SALLE_DES_ETATS_ROOM
from repro.louvre.restructure import (
    StitchReport,
    indicative_visits,
    stitch_fragments,
)
from repro.louvre.zones import ZONE_SALLE_DES_ETATS
from repro.movement.agents import GeometricAgent, WaypointPath
from repro.positioning.detection import PositionFix


def conceptual_demo(space: LouvreSpace) -> None:
    print("=== 1. conceptual (focus of attention) trajectory ===")
    plan = space.floorplan
    # Ground truth: the visitor lingers at the Mona Lisa, then walks
    # past the neighbouring exhibits without stopping.
    mona = plan.roi_space.cell(MONA_LISA_ROI).geometry.centroid()
    room = plan.room_space.cell(SALLE_DES_ETATS_ROOM)
    # The doorway sits near a room corner, outside the engagement RoI.
    room_box = room.geometry.bbox()
    from repro.spatial.geometry import Point
    doorway = Point(room_box.min_x + 0.5, room_box.min_y + 0.5)
    path = WaypointPath([doorway, mona, doorway],
                        [5.0, 180.0, 5.0], floor=1)
    agent = GeometricAgent(path, speed=0.8, jitter=0.05,
                           rng=random.Random(4))
    fixes = [PositionFix(s.t, s.position, s.floor)
             for s in agent.track(0.0, sample_interval=2.0)]

    extractor = AttentionExtractor(plan.roi_space,
                                   min_attention_seconds=10.0)
    report = AttentionReport()
    conceptual = extractor.extract("visitor-7", fixes, report=report)
    print("  fixes: {} | attending: {:.0%} of the time".format(
        report.fixes, report.focus_share))
    for roi, seconds in attention_profile(conceptual).items():
        print("  attended {} for {:.0f}s".format(roi, seconds))

    # Contrast with the physical reading of the same movement.
    from repro.core import AnnotationSet, SemanticTrajectory, Trace
    from repro.core.trajectory import TraceEntry
    physical = SemanticTrajectory(
        "visitor-7",
        Trace([TraceEntry(None, SALLE_DES_ETATS_ROOM, fixes[0].t,
                          fixes[-1].t)]),
        AnnotationSet.goals("visit"))
    contrast = physical_vs_conceptual(physical, conceptual)
    print("  physical: 1 room for {:.0f}s | conceptual: {:.0f} "
          "exhibit(s), focus ratio {:.0%}".format(
              contrast["physical_span"],
              contrast["attended_exhibits"],
              contrast["focus_ratio"]))


def ontology_demo(space: LouvreSpace) -> None:
    print("\n=== 2. CIDOC-CRM ontology integration ===")
    ontology = cidoc_core()
    mapping = CellConceptMapping(ontology)
    mapping.assign(MONA_LISA_ROI, "museum:Painting")
    print("  Mona Lisa is-a Exhibit:",
          ontology.is_a("museum:Painting", "museum:Exhibit"))
    print("  Mona Lisa is-a CRM Human-Made Object:",
          ontology.is_a("museum:Painting",
                        "crm:E22_Human-Made_Object"))
    print("  concepts subsumed by Exhibit:",
          sorted(ontology.descendants("museum:Exhibit")))
    print("  room concept via semantic class:",
          mapping.concept_of(SALLE_DES_ETATS_ROOM,
                             semantic_class="Room"))


def restructure_demo(space: LouvreSpace) -> None:
    print("\n=== 3. restructuring indicative visits from fragments ===")
    generator = LouvreDatasetGenerator(
        space, DatasetParameters().scaled(0.05))
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    fragments, _ = builder.build_all(generator.detection_records())
    report = StitchReport()
    stitched = stitch_fragments(fragments, space.dataset_zone_nrg(),
                                epoch=from_date("19-01-2017"),
                                report=report)
    print("  fragments in: {} | stitched visits out: {}".format(
        report.input_trajectories, report.stitched_visits))
    print("  seams joined: {} | presence tuples inferred: {}".format(
        report.fragments_joined, report.inference.tuples_inserted))

    visits = indicative_visits(stitched, k=4,
                               hierarchy=space.zone_hierarchy, seed=9)
    print("  indicative visits (cluster medoids):")
    for visit in visits:
        print("    {:3d} visits ~ {}".format(
            visit.cluster_size, " → ".join(visit.sequence[:6])
            + (" …" if len(visit.sequence) > 6 else "")))


def main() -> None:
    space = LouvreSpace()
    conceptual_demo(space)
    ontology_demo(space)
    restructure_demo(space)


if __name__ == "__main__":
    main()
