"""Overlapping episodic segmentation (Figure 5) and visitor profiling.

Reproduces the paper's "exit museum" / "buy souvenir" overlapping
episodes on the E→P→S→C path, then profiles a synthetic corpus into
behavioural clusters with k-medoids over SITM-derived features.

Run:  python examples/episode_analysis.py
"""

from repro.core import AnnotationSet, find_episodes, force_exclusive
from repro.core.episodes import (
    EndsInStatePredicate,
    EpisodicSegmentation,
    StateSequencePredicate,
    VisitsStatePredicate,
)
from repro.core.timeutil import clock
from repro.experiments.fig5 import build_visitor_trajectory
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.core import TrajectoryBuilder
from repro.louvre.zones import ZONE_C, ZONE_E, ZONE_P, ZONE_S
from repro.mining.profiling import (
    cluster_summary,
    extract_features,
    k_medoids,
    standardize,
)


def episode_demo() -> None:
    print("=== Figure 5: overlapping episodes ===")
    visitor = build_visitor_trajectory()
    print("visitor path:", " → ".join(visitor.distinct_state_sequence()))

    exit_episodes = find_episodes(
        visitor,
        StateSequencePredicate([ZONE_E, ZONE_P, ZONE_S, ZONE_C],
                               exact=False)
        & EndsInStatePredicate(ZONE_C),
        AnnotationSet.goals("exit museum"), label="exit museum")
    buy_episodes = find_episodes(
        visitor,
        StateSequencePredicate([ZONE_E, ZONE_P, ZONE_S], exact=True)
        & VisitsStatePredicate(ZONE_S),
        AnnotationSet.goals("buy souvenir"), label="buy souvenir")

    segmentation = EpisodicSegmentation(
        visitor, exit_episodes + buy_episodes)
    for episode in segmentation:
        print("  [{}] {} → {}  ({})".format(
            episode.label, clock(episode.t_start), clock(episode.t_end),
            " → ".join(episode.states())))
    print("episodes overlap:", segmentation.has_overlaps())
    mid = (buy_episodes[0].t_start + buy_episodes[0].t_end) / 2
    print("meanings active at {}: {}".format(
        clock(mid), [e.label for e in segmentation.episodes_at(mid)]))

    exclusive = force_exclusive(segmentation)
    print("forcing mutual exclusivity keeps only:",
          [e.label for e in exclusive])


def profiling_demo() -> None:
    print("\n=== visitor profiling (Section 5) ===")
    space = LouvreSpace()
    generator = LouvreDatasetGenerator(
        space, DatasetParameters().scaled(0.05))
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, _ = builder.build_all(generator.detection_records())

    features = [extract_features(t, space.zone_hierarchy)
                for t in trajectories]
    vectors = standardize([f.as_vector() for f in features])
    k = 4  # the ant/fish/grasshopper/butterfly hypothesis
    assignment, _ = k_medoids(vectors, k, seed=7)
    for index, summary in enumerate(
            cluster_summary(features, assignment, k)):
        if summary["size"] == 0:
            continue
        print("  cluster {}: {:4d} visits | {:6.0f}s mean duration | "
              "{:4.1f} zones | {:5.0f}s mean dwell | "
              "{:.1f} floor switches".format(
                  index, summary["size"], summary["mean_duration"],
                  summary["mean_cells"], summary["mean_dwell"],
                  summary["mean_floor_switches"]))


if __name__ == "__main__":
    episode_demo()
    profiling_demo()
