"""Regenerate every table and figure of the paper in one run.

Prints the full paper-vs-measured report: Table 1, Figures 1–6, the
Section 4.1 dataset statistics, and the three design ablations.

Run:  python examples/reproduce_paper.py [scale]
      (scale defaults to 1.0 — the full 20,245-record corpus)
"""

import sys

from repro.experiments.runner import render_report, run_all


def main(scale: float = 1.0) -> None:
    results = run_all(scale=scale)
    print(render_report(results))
    stats = results["S41"]
    print("\nall Section 4.1 statistics match the paper:",
          stats["all_match"])


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
