"""Quickstart: model a small museum and one annotated visit.

Builds a three-room indoor space, derives its directed accessibility
NRG, records a visitor's semantic trajectory (with the paper's
event-based mid-stay goal change), and runs the basic queries.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AnnotationSet,
    SemanticEvent,
    SemanticTrajectory,
    Trace,
    TraceEntry,
    apply_semantic_event,
    validate_trajectory,
)
from repro.core.timeutil import from_clock, from_date
from repro.indoor import (
    BoundaryKind,
    Cell,
    CellBoundary,
    CellSpace,
    derive_accessibility_nrg,
)
from repro.spatial.geometry import Polygon


def build_space() -> CellSpace:
    """Three rooms in a row; the gift-shop door is one-way (exit)."""
    space = CellSpace("demo-museum")
    space.add_cell(Cell("gallery", name="Gallery",
                        geometry=Polygon.rectangle(0, 0, 10, 8),
                        floor=0))
    space.add_cell(Cell("hall", name="Main Hall",
                        geometry=Polygon.rectangle(10, 0, 18, 8),
                        floor=0))
    space.add_cell(Cell("shop", name="Gift Shop",
                        geometry=Polygon.rectangle(18, 0, 24, 8),
                        floor=0,
                        attributes={"sells_souvenirs": True}))
    space.add_boundary(CellBoundary("door-1", "gallery", "hall",
                                    BoundaryKind.DOOR))
    space.add_boundary(CellBoundary("door-2", "hall", "shop",
                                    BoundaryKind.DOOR,
                                    bidirectional=False))
    return space


def main() -> None:
    space = build_space()
    nrg = derive_accessibility_nrg(space)
    print("accessibility NRG:", len(nrg), "nodes,",
          nrg.transition_count(), "directed edges")
    print("one-way restrictions:", nrg.asymmetric_pairs())

    day = from_date("15-02-2017")
    t = lambda hms: from_clock(day, hms)  # noqa: E731
    visit = SemanticTrajectory(
        mo_id="visitor-1",
        trace=Trace([
            TraceEntry(None, "gallery", t("11:30:00"), t("11:52:00")),
            TraceEntry("door-1:fwd", "hall", t("11:52:30"),
                       t("12:10:00")),
            TraceEntry("door-2:fwd", "shop", t("12:10:20"),
                       t("12:25:00")),
        ]),
        annotations=AnnotationSet.goals("visit"),
    )
    print("\ntrajectory:", visit)
    print(visit.trace.describe())

    # Event-based enrichment: the visitor starts buying mid-stay.
    enriched = apply_semantic_event(
        visit, SemanticEvent(t("12:18:00"),
                             AnnotationSet.goals("visit", "buy")))
    print("\nafter the semantic event (new tuple, same cell):")
    print(enriched.trace.describe())

    issues = validate_trajectory(enriched, nrg)
    print("\nvalidation issues:", [i.code.value for i in issues] or "none")
    print("states at 12:00:00:", enriched.state_at(t("12:00:00")))
    print("time in shop: {:.0f}s".format(
        enriched.trace.time_in_state("shop")))


if __name__ == "__main__":
    main()
