"""The sensing substrate end to end (Section 4.1's data provenance).

Simulates a visitor walking through the Denon +1 painting circuit,
observes the walk through a BLE beacon grid (log-distance RSSI), runs
trilateration and EKF smoothing, aggregates position estimates into
symbolic zone detections, and builds the SITM trajectory — the exact
pipeline the Louvre app's dataset went through.

Run:  python examples/positioning_pipeline.py
"""

import random

from repro.core import TrajectoryBuilder
from repro.louvre import LouvreSpace
from repro.louvre.zones import (
    ZONE_GRANDE_GALERIE,
    ZONE_SALLE_DES_ETATS,
)
from repro.movement.agents import GeometricAgent, WaypointPath
from repro.positioning import (
    BeaconGrid,
    ExtendedKalmanFilter2D,
    RssiModel,
    ZoneDetector,
    trilaterate,
)
from repro.positioning.detection import PositionFix
from repro.spatial.geometry import BBox


def main() -> None:
    space = LouvreSpace()
    plan = space.floorplan

    # Ground truth: walk every room of two Denon +1 zones.
    rooms = (list(plan.rooms_of_zone(ZONE_SALLE_DES_ETATS))
             + list(plan.rooms_of_zone(ZONE_GRANDE_GALERIE)))
    waypoints = [plan.room_space.cell(r).geometry.centroid()
                 for r in rooms]
    path = WaypointPath(waypoints, [45.0] * len(waypoints), floor=1)
    agent = GeometricAgent(path, speed=0.8, rng=random.Random(11))
    track = agent.track(t_start=0.0, sample_interval=2.0)
    print("ground-truth samples:", len(track),
          "({:.0f} s of movement)".format(agent.duration()))

    # Beacon infrastructure over the walked area.
    area = BBox.union_of([plan.zone_space.cell(z).geometry.bbox()
                          for z in (ZONE_SALLE_DES_ETATS,
                                    ZONE_GRANDE_GALERIE)])
    grid = BeaconGrid(area.expanded(15.0), floor=1, spacing=12.0)
    registry = {b.beacon_id: b for b in grid.beacons}
    model = RssiModel(sigma=3.0, rng=random.Random(12))
    print("beacons deployed:", len(grid))

    # RSSI → trilateration → EKF.
    ekf = None
    fixes = []
    raw_error = smoothed_error = 0.0
    for sample in track:
        readings = model.scan(grid.beacons, sample.position,
                              sample.floor, sample.t)
        fix = trilaterate(readings, registry, model)
        if fix is None:
            continue
        if ekf is None:
            ekf = ExtendedKalmanFilter2D(initial_position=fix.position)
        else:
            ekf.predict(2.0)
        ekf.update_position(fix.position,
                            noise_scale=1.0 + fix.residual / 5.0)
        raw_error += fix.position.distance_to(sample.position)
        smoothed_error += ekf.position.distance_to(sample.position)
        fixes.append(PositionFix(sample.t, ekf.position, sample.floor,
                                 error=fix.residual))
    print("position fixes:", len(fixes))
    print("mean error  raw {:.2f} m  |  EKF {:.2f} m".format(
        raw_error / len(fixes), smoothed_error / len(fixes)))

    # Spatial aggregation into zones (the dataset's record format).
    detector = ZoneDetector(plan.zone_space, max_fix_gap=30.0)
    records = detector.detect("sim-visitor", fixes)
    print("\nzone detection records:")
    for record in records:
        print("  {:12s} {:7.0f}s .. {:7.0f}s ({:5.0f}s)".format(
            record.state, record.t_start, record.t_end,
            record.duration))

    # And finally the SITM trajectory.
    builder = TrajectoryBuilder(space.zone_nrg)
    trajectories, report = builder.build_all(records)
    print("\nsemantic trajectory:")
    print(trajectories[0].trace.describe())
    print("zero-duration records filtered:",
          report.cleaning.dropped_zero_duration)


if __name__ == "__main__":
    main()
