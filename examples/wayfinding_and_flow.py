"""Way-finding and collective flow analytics over the Louvre model.

The motivating services of Section 1: "multimedia guides offering
Location-Based Services (e.g. way-finding, contextualized content
delivery)" for visitors, and collective movement insight for the
museum.

Run:  python examples/wayfinding_and_flow.py
"""

from repro.api import Workbench
from repro.core.timeutil import clock, from_date
from repro.indoor.navigation import (
    RoutePlanner,
    UnreachableError,
    plan_hierarchical,
    route_instructions,
)
from repro.louvre import LouvreSpace
from repro.louvre.floorplan import SALLE_DES_ETATS_ROOM
from repro.louvre.zones import ZONE_C, ZONE_E, ZONE_ENTRANCE
from repro.mining.flow import (
    congestion_profile,
    hourly_occupancy,
    od_matrix,
    peak_hour,
)
from repro.storage import expr as E


def wayfinding_demo(space: LouvreSpace) -> None:
    print("=== way-finding over the zone layer ===")
    planner = RoutePlanner(space.dataset_zone_nrg())
    route = planner.plan(ZONE_ENTRANCE, ZONE_C)
    print("pyramid entrance → Carrousel exit:")
    for line in route_instructions(route,
                                   space.graph.space("zones")):
        print("  " + line)

    print("\none-way restrictions are honoured:")
    try:
        planner.plan(ZONE_C, ZONE_E)
    except UnreachableError as error:
        print("  re-entering from the exit: {}".format(error))

    print("\nhierarchical room-level routing (corridor first):")
    origin = space.floorplan.rooms_of_zone("zone60868")[0]
    destination = space.floorplan.rooms_of_zone("zone60854")[-1]
    coarse, fine = plan_hierarchical(space.core_hierarchy, "rooms",
                                     origin, destination)
    print("  corridor: " + " → ".join(coarse))
    print("  {} rooms crossed, incl. {}".format(
        fine.hop_count,
        "Salle des États" if SALLE_DES_ETATS_ROOM in fine.states
        else "no Salle des États"))


def flow_demo(space: LouvreSpace) -> None:
    print("\n=== collective flow analytics (via the Workbench) ===")
    # One facade call: generate → build → store, engine-backed.
    workbench = Workbench.louvre(scale=0.1, space=space)
    metrics = workbench.metrics
    print("engine: {} records -> {} trajectories in {:.3f}s".format(
        metrics["clean"].items_in, len(workbench.store),
        metrics.total_seconds))

    print("top origin→destination pairs:")
    matrix = od_matrix(workbench.store)
    for (origin, destination), count in sorted(
            matrix.items(), key=lambda kv: -kv[1])[:5]:
        print("  {:5d}x  {} → {}".format(count, origin, destination))

    # Mining straight over a *query*: only multi-zone visits.
    roaming = workbench.query(E.min_entries(2))
    print("\nflow imbalance over {} multi-zone visits "
          "(sources < 0 < sinks):".format(roaming.count()))
    for balance in workbench.flow(roaming)[:5]:
        print("  {:10s} in={:5d} out={:5d} imbalance={:+d}".format(
            balance.state, balance.inflow, balance.outflow,
            balance.imbalance))

    print("\nbusiest hour per headline zone:")
    occupancy = hourly_occupancy(workbench.store,
                                 states=["zone60853", "zone60886"])
    for zone, series in occupancy.items():
        print("  {}: peak at {:02d}:00 ({:.0f} presence-hours)".format(
            zone, peak_hour(series), series[peak_hour(series)] / 3600))

    print("\ncongestion through one afternoon:")
    store = workbench.store
    day = from_date("15-02-2017")
    for t, total, busiest in congestion_profile(
            store, day + 12 * 3600, day + 17 * 3600, step=3600.0):
        print("  {}  {:4d} visitors present, busiest: {}".format(
            clock(t), total, busiest))


def main() -> None:
    space = LouvreSpace()
    wayfinding_demo(space)
    flow_demo(space)


if __name__ == "__main__":
    main()
